//! Differential tests: the batched, epoch-memoized `B_r` path must answer
//! exactly like the naive per-connection Eq.-4/Eq.-5 computation.
//! (Seeded-RNG loops stand in for proptest, which is unavailable offline.)

use qres_cellnet::{Bandwidth, BsNetworkKind, Cell, CellId, ConnInfo, ConnectionId, Topology};
use qres_core::{
    neighbor_contribution, neighbor_contribution_naive, AcKind, QresConfig, ReservationSystem,
    SchemeConfig,
};
use qres_des::{Duration, SimTime, StreamRng};
use qres_mobility::{HandoffEvent, HoeCache, HoeConfig};

const NUM_CELLS: u32 = 6;

fn random_cache(rng: &mut StreamRng, n_quad: usize) -> HoeCache {
    let mut config = HoeConfig::stationary();
    config.n_quad = n_quad;
    let mut cache = HoeCache::new(config);
    let n = rng.gen_range(0usize..150);
    let mut t = 0.0;
    for _ in 0..n {
        t += rng.gen_range_f64(0.0, 50.0);
        let prev = if rng.gen_bool(0.7) {
            Some(CellId(rng.gen_range(0u32..NUM_CELLS)))
        } else {
            None
        };
        cache.record(HandoffEvent::new(
            SimTime::from_secs(t),
            prev,
            CellId(rng.gen_range(0u32..NUM_CELLS)),
            Duration::from_secs(rng.gen_range_f64(0.1, 400.0)),
        ));
    }
    cache
}

fn random_population(rng: &mut StreamRng, now: f64) -> Cell {
    let population = rng.gen_range(0usize..120);
    let mut cell = Cell::new(CellId(1), Bandwidth::from_bus(4 * population as u32 + 1));
    for j in 0..population {
        let prev = if rng.gen_bool(0.6) {
            Some(CellId(rng.gen_range(0u32..NUM_CELLS)))
        } else {
            None
        };
        // Route-aware mix: some mobiles declare their next cell.
        let known_next = if rng.gen_bool(0.3) {
            Some(CellId(rng.gen_range(0u32..NUM_CELLS)))
        } else {
            None
        };
        // Entry times up to 500 s back: many extant sojourns outlast every
        // cached history (stationary classification) by construction.
        cell.insert(ConnInfo {
            id: ConnectionId(j as u64),
            bandwidth: Bandwidth::from_bus(if rng.gen_bool(0.5) { 1 } else { 4 }),
            prev,
            entered_at: SimTime::from_secs(now - rng.gen_range_f64(0.0, 500.0)),
            known_next,
        })
        .unwrap();
    }
    cell
}

/// The batched evaluation equals the per-connection reference, bit for bit,
/// over random histories, populations, `T_est`, and `now` — including
/// route-aware (`known_next`) and stationary-mobile cases.
#[test]
fn batched_matches_naive_per_connection() {
    let mut rng = StreamRng::seed_from_u64(0xB47C_0001);
    for case in 0..200 {
        let n_quad = [3usize, 25, 10_000][case % 3];
        let mut cache = random_cache(&mut rng, n_quad);
        let now = 3_000.0 + rng.gen_range_f64(0.0, 1_000.0);
        let cell = random_population(&mut rng, now);
        let target = CellId(0);
        let t_est = Duration::from_secs(rng.gen_range_f64(0.0, 300.0));
        let now = SimTime::from_secs(now);
        let batched = neighbor_contribution(&cell, &mut cache, now, target, t_est);
        let naive = neighbor_contribution_naive(&cell, &mut cache, now, target, t_est);
        assert!(
            (batched - naive).abs() < 1e-9,
            "case {case}: batched {batched} != naive {naive}"
        );
        // The paths are designed to agree exactly, not just within
        // tolerance.
        assert_eq!(batched, naive, "case {case}");
    }
}

/// System-level: after random traffic, the memoized `B_r` the system
/// reports equals a from-scratch naive recomputation over its neighbors.
#[test]
fn memoized_br_matches_naive_recomputation() {
    let mut rng = StreamRng::seed_from_u64(0xB47C_0002);
    for case in 0..20 {
        let kind = [AcKind::Ac1, AcKind::Ac2, AcKind::Ac3][case % 3];
        let config = QresConfig::paper_stationary(SchemeConfig::Predictive { kind });
        let mut sys = ReservationSystem::new(
            config,
            Topology::ring(NUM_CELLS as usize),
            BsNetworkKind::FullyConnected,
        );
        // Random traffic: arrivals, hand-offs (some route-aware), ends.
        let mut t = 0.0;
        let mut next_id = 0u64;
        let mut live: Vec<(ConnectionId, CellId)> = Vec::new();
        for _ in 0..rng.gen_range(30usize..200) {
            t += rng.gen_range_f64(0.01, 5.0);
            let now = SimTime::from_secs(t);
            match rng.gen_range(0u32..4) {
                0 | 1 => {
                    let cell = CellId(rng.gen_range(0u32..NUM_CELLS));
                    let id = ConnectionId(next_id);
                    next_id += 1;
                    let admitted = sys
                        .request_new_connection(
                            now,
                            qres_core::NewConnectionRequest {
                                cell,
                                id,
                                bandwidth: Bandwidth::from_bus(if rng.gen_bool(0.5) {
                                    1
                                } else {
                                    4
                                }),
                                known_next: None,
                            },
                        )
                        .is_admitted();
                    if admitted {
                        live.push((id, cell));
                    }
                }
                2 if !live.is_empty() => {
                    let k = rng.gen_index(live.len());
                    let (id, from) = live.swap_remove(k);
                    let neighbors = sys.topology().neighbors(from);
                    let to = neighbors[rng.gen_index(neighbors.len())];
                    let known_next = if rng.gen_bool(0.4) {
                        let onward = sys.topology().neighbors(to);
                        Some(onward[rng.gen_index(onward.len())])
                    } else {
                        None
                    };
                    if !sys
                        .attempt_handoff_routed(now, id, from, to, known_next)
                        .is_dropped()
                    {
                        live.push((id, to));
                    }
                }
                _ if !live.is_empty() => {
                    let k = rng.gen_index(live.len());
                    let (id, cell) = live.swap_remove(k);
                    sys.end_connection(now, id, cell);
                }
                _ => {}
            }
        }
        // Force a B_r computation at a fresh instant and cross-check it.
        t += 1.0;
        let now = SimTime::from_secs(t);
        let target = CellId(rng.gen_range(0u32..NUM_CELLS));
        sys.request_new_connection(
            now,
            qres_core::NewConnectionRequest {
                cell: target,
                id: ConnectionId(next_id),
                bandwidth: Bandwidth::from_bus(1),
                known_next: None,
            },
        );
        let reported = sys.last_br(target);
        let t_est = sys.t_est(target);
        let neighbors: Vec<CellId> = sys.topology().neighbors(target).to_vec();
        let mut naive = 0.0;
        for nb in neighbors {
            let cell = sys.cell(nb).clone();
            naive += neighbor_contribution_naive(&cell, sys.hoe_cache_mut(nb), now, target, t_est);
        }
        assert!(
            (reported - naive).abs() < 1e-9,
            "case {case}: memoized B_r {reported} != naive {naive}"
        );
    }
}
