//! Randomized tests of the `T_est` window controller (Fig. 6): the
//! structural invariants hold under arbitrary drop patterns. (Seeded-RNG
//! loops stand in for proptest, which is unavailable offline.)

use qres_core::{StepPolicy, WindowController};
use qres_des::{Duration, StreamRng};

/// Under any observation sequence: `T_est ≥ 1`, `T_est` never exceeds the
/// cap, `W_obs` is a positive multiple of `w`, and the in-window counters
/// satisfy `n_HD ≤ n_H ≤ W_obs`.
#[test]
fn structural_invariants() {
    let mut rng = StreamRng::seed_from_u64(0xC071_0001);
    for _ in 0..60 {
        let target_inv = rng.gen_range(2u32..500);
        let t_start = rng.gen_range(1u64..20);
        let cap = rng.gen_range_f64(1.0, 300.0);
        let n_drops = rng.gen_range(1usize..2_000);
        let p = 1.0 / f64::from(target_inv);
        let mut ctl = WindowController::new(p, t_start, StepPolicy::Fixed);
        let w = ctl.w();
        for _ in 0..n_drops {
            let dropped = rng.gen_bool(0.5);
            ctl.observe_handoff(dropped, Some(Duration::from_secs(cap)));
            assert!(ctl.t_est_secs() >= 1);
            assert!(
                ctl.t_est_secs() <= t_start.max(cap.floor() as u64).max(1),
                "T_est {} above cap {cap} (start {t_start})",
                ctl.t_est_secs()
            );
            assert!(ctl.w_obs() >= w);
            assert_eq!(ctl.w_obs() % w, 0);
            assert!(ctl.n_hd() <= ctl.n_h());
            assert!(ctl.n_h() <= ctl.w_obs() + 1);
        }
    }
}

/// All-success streams drive `T_est` down to the floor.
#[test]
fn clean_traffic_floors_t_est() {
    let mut rng = StreamRng::seed_from_u64(0xC071_0002);
    for _ in 0..30 {
        let t_start = rng.gen_range(1u64..30);
        let mut ctl = WindowController::new(0.01, t_start, StepPolicy::Fixed);
        // Enough clean windows to walk any start value to 1.
        for _ in 0..(t_start as usize + 2) * 101 {
            ctl.observe_handoff(false, Some(Duration::from_secs(1_000.0)));
        }
        assert_eq!(ctl.t_est_secs(), 1, "t_start {t_start}");
    }
}

/// All-drop streams drive `T_est` up to the cap.
#[test]
fn pure_drops_hit_the_cap() {
    let mut rng = StreamRng::seed_from_u64(0xC071_0003);
    for _ in 0..30 {
        let cap = rng.gen_range(2u64..60);
        let mut ctl = WindowController::new(0.01, 1, StepPolicy::Fixed);
        for _ in 0..(cap as usize + 5) {
            ctl.observe_handoff(true, Some(Duration::from_secs(cap as f64)));
        }
        assert_eq!(ctl.t_est_secs(), cap, "cap {cap}");
    }
}

/// Aggressive policies overshoot at least as far as the fixed policy on the
/// same drop burst — the quantified version of the paper's "over-reaction"
/// finding.
#[test]
fn aggressive_policies_overshoot() {
    for burst in 3usize..30 {
        let run = |policy| {
            let mut ctl = WindowController::new(0.01, 1, policy);
            for _ in 0..burst {
                ctl.observe_handoff(true, Some(Duration::from_secs(10_000.0)));
            }
            ctl.t_est_secs()
        };
        let fixed = run(StepPolicy::Fixed);
        let additive = run(StepPolicy::Additive);
        let multiplicative = run(StepPolicy::Multiplicative);
        assert!(additive >= fixed);
        assert!(multiplicative >= additive);
        if burst > 4 {
            assert!(
                multiplicative > fixed,
                "doubling must overshoot ±1 stepping"
            );
        }
    }
}
