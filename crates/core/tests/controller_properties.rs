//! Property-based tests of the `T_est` window controller (Fig. 6): the
//! structural invariants hold under arbitrary drop patterns.

use proptest::prelude::*;
use qres_core::{StepPolicy, WindowController};
use qres_des::Duration;

proptest! {
    /// Under any observation sequence: `T_est ≥ 1`, `T_est` never exceeds
    /// the cap, `W_obs` is a positive multiple of `w`, and the in-window
    /// counters satisfy `n_HD ≤ n_H ≤ W_obs`.
    #[test]
    fn structural_invariants(
        target_inv in 2u32..500,      // w = target_inv
        t_start in 1u64..20,
        cap in 1.0f64..300.0,
        drops in prop::collection::vec(any::<bool>(), 1..2_000),
    ) {
        let p = 1.0 / f64::from(target_inv);
        let mut ctl = WindowController::new(p, t_start, StepPolicy::Fixed);
        let w = ctl.w();
        for &dropped in &drops {
            ctl.observe_handoff(dropped, Some(Duration::from_secs(cap)));
            prop_assert!(ctl.t_est_secs() >= 1);
            prop_assert!(
                ctl.t_est_secs() <= t_start.max(cap.floor() as u64).max(1),
                "T_est {} above cap {cap} (start {t_start})",
                ctl.t_est_secs()
            );
            prop_assert!(ctl.w_obs() >= w);
            prop_assert_eq!(ctl.w_obs() % w, 0);
            prop_assert!(ctl.n_hd() <= ctl.n_h());
            prop_assert!(ctl.n_h() <= ctl.w_obs() + 1);
        }
    }

    /// All-success streams drive `T_est` down to the floor.
    #[test]
    fn clean_traffic_floors_t_est(t_start in 1u64..30) {
        let mut ctl = WindowController::new(0.01, t_start, StepPolicy::Fixed);
        // Enough clean windows to walk any start value to 1.
        for _ in 0..(t_start as usize + 2) * 101 {
            ctl.observe_handoff(false, Some(Duration::from_secs(1_000.0)));
        }
        prop_assert_eq!(ctl.t_est_secs(), 1);
    }

    /// All-drop streams drive `T_est` up to the cap.
    #[test]
    fn pure_drops_hit_the_cap(cap in 2u64..60) {
        let mut ctl = WindowController::new(0.01, 1, StepPolicy::Fixed);
        for _ in 0..(cap as usize + 5) {
            ctl.observe_handoff(true, Some(Duration::from_secs(cap as f64)));
        }
        prop_assert_eq!(ctl.t_est_secs(), cap);
    }

    /// Aggressive policies overshoot at least as far as the fixed policy on
    /// the same drop burst — the quantified version of the paper's
    /// "over-reaction" finding.
    #[test]
    fn aggressive_policies_overshoot(burst in 3usize..30) {
        let run = |policy| {
            let mut ctl = WindowController::new(0.01, 1, policy);
            for _ in 0..burst {
                ctl.observe_handoff(true, Some(Duration::from_secs(10_000.0)));
            }
            ctl.t_est_secs()
        };
        let fixed = run(StepPolicy::Fixed);
        let additive = run(StepPolicy::Additive);
        let multiplicative = run(StepPolicy::Multiplicative);
        prop_assert!(additive >= fixed);
        prop_assert!(multiplicative >= additive);
        if burst > 4 {
            prop_assert!(multiplicative > fixed, "doubling must overshoot ±1 stepping");
        }
    }
}
