//! Property-based tests of the reservation system's hard invariants under
//! randomized workloads — bandwidth accounting can never go wrong, whatever
//! the scheme, load, media mix, mobility, or topology.

use proptest::prelude::*;
use qres::sim::{run_scenario, Scenario, SchemeKind};

fn scheme_strategy() -> impl Strategy<Value = SchemeKind> {
    prop_oneof![
        (1u32..50).prop_map(|guard_bus| SchemeKind::Static { guard_bus }),
        Just(SchemeKind::Ac1),
        Just(SchemeKind::Ac2),
        Just(SchemeKind::Ac3),
    ]
}

proptest! {
    // Full-stack runs are comparatively expensive; a couple dozen random
    // configurations still covers the parameter cube well.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the configuration: probabilities are probabilities,
    /// time-weighted bandwidths respect the link capacity, counters are
    /// consistent, and the (debug-asserted) cell accounting held
    /// throughout the run.
    #[test]
    fn run_invariants_hold(
        scheme in scheme_strategy(),
        load in 20.0f64..320.0,
        r_vo in 0.0f64..=1.0,
        high_mobility in any::<bool>(),
        ring in any::<bool>(),
        one_way in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let mut s = Scenario::paper_baseline()
            .scheme(scheme)
            .offered_load(load)
            .voice_ratio(r_vo)
            .duration_secs(150.0)
            .seed(seed);
        s.ring = ring;
        if one_way {
            s = s.one_directional();
        }
        let s = if high_mobility { s.high_mobility() } else { s.low_mobility() };
        let r = run_scenario(&s);

        prop_assert!((0.0..=1.0).contains(&r.p_cb()));
        prop_assert!((0.0..=1.0).contains(&r.p_hd()));
        prop_assert!(r.system_cb.hits() <= r.system_cb.trials());
        prop_assert!(r.system_hd.hits() <= r.system_hd.trials());
        prop_assert!(r.avg_bu() <= 100.0 + 1e-9, "avg B_u exceeds capacity");
        prop_assert!(r.avg_br() >= 0.0);
        for c in &r.cells {
            prop_assert!(c.b_u_final <= 100);
            prop_assert!(c.b_u_avg <= 100.0 + 1e-9);
            prop_assert!(c.b_r_final >= 0.0);
            prop_assert!(c.blocked <= c.requests);
            prop_assert!(c.drops <= c.handoffs);
            prop_assert!(c.t_est_secs >= 1);
        }
        // Per-cell counters add up to the system counters.
        let total_req: u64 = r.cells.iter().map(|c| c.requests).sum();
        let total_ho: u64 = r.cells.iter().map(|c| c.handoffs).sum();
        prop_assert_eq!(total_req, r.system_cb.trials());
        prop_assert_eq!(total_ho, r.system_hd.trials());
    }

    /// N_calc bounds per scheme: AC1 exactly 1, AC2 exactly 1 + |A|,
    /// AC3 in between (paper Fig. 13's invariant, for all loads).
    #[test]
    fn n_calc_bounds(
        load in 20.0f64..320.0,
        seed in 0u64..1_000,
    ) {
        let base = Scenario::paper_baseline()
            .offered_load(load)
            .duration_secs(120.0)
            .seed(seed);
        let ac1 = run_scenario(&base.clone().scheme(SchemeKind::Ac1));
        prop_assert_eq!(ac1.n_calc_mean, 1.0);
        let ac2 = run_scenario(&base.clone().scheme(SchemeKind::Ac2));
        prop_assert_eq!(ac2.n_calc_mean, 3.0);
        let ac3 = run_scenario(&base.clone().scheme(SchemeKind::Ac3));
        prop_assert!(ac3.n_calc_mean >= 1.0 - 1e-12);
        prop_assert!(ac3.n_calc_mean <= 3.0 + 1e-12);
    }
}
