//! Randomized tests of the reservation system's hard invariants under
//! randomized workloads — bandwidth accounting can never go wrong, whatever
//! the scheme, load, media mix, mobility, or topology. (Seeded-RNG loops
//! stand in for proptest, which is unavailable offline.)

use qres::des::StreamRng;
use qres::sim::{run_scenario, Scenario, SchemeKind};

fn random_scheme(rng: &mut StreamRng) -> SchemeKind {
    match rng.gen_range(0u32..4) {
        0 => SchemeKind::Static {
            guard_bus: rng.gen_range(1u32..50),
        },
        1 => SchemeKind::Ac1,
        2 => SchemeKind::Ac2,
        _ => SchemeKind::Ac3,
    }
}

/// Whatever the configuration: probabilities are probabilities,
/// time-weighted bandwidths respect the link capacity, counters are
/// consistent, and the (debug-asserted) cell accounting held throughout
/// the run.
#[test]
fn run_invariants_hold() {
    // Full-stack runs are comparatively expensive; a couple dozen random
    // configurations still covers the parameter cube well.
    let mut rng = StreamRng::seed_from_u64(0x5157_0001);
    for _ in 0..24 {
        let scheme = random_scheme(&mut rng);
        let load = rng.gen_range_f64(20.0, 320.0);
        let r_vo = rng.gen_range_f64(0.0, 1.0);
        let high_mobility = rng.gen_bool(0.5);
        let ring = rng.gen_bool(0.5);
        let one_way = rng.gen_bool(0.5);
        let seed = rng.gen_range(0u64..1_000);
        let mut s = Scenario::paper_baseline()
            .scheme(scheme)
            .offered_load(load)
            .voice_ratio(r_vo)
            .duration_secs(150.0)
            .seed(seed);
        s.ring = ring;
        if one_way {
            s = s.one_directional();
        }
        let s = if high_mobility {
            s.high_mobility()
        } else {
            s.low_mobility()
        };
        let r = run_scenario(&s);

        let ctx = format!("scheme {scheme:?}, L {load}, R_vo {r_vo}, seed {seed}");
        assert!((0.0..=1.0).contains(&r.p_cb()), "{ctx}");
        assert!((0.0..=1.0).contains(&r.p_hd()), "{ctx}");
        assert!(r.system_cb.hits() <= r.system_cb.trials(), "{ctx}");
        assert!(r.system_hd.hits() <= r.system_hd.trials(), "{ctx}");
        assert!(
            r.avg_bu() <= 100.0 + 1e-9,
            "avg B_u exceeds capacity: {ctx}"
        );
        assert!(r.avg_br() >= 0.0, "{ctx}");
        for c in &r.cells {
            assert!(c.b_u_final <= 100, "{ctx}");
            assert!(c.b_u_avg <= 100.0 + 1e-9, "{ctx}");
            assert!(c.b_r_final >= 0.0, "{ctx}");
            assert!(c.blocked <= c.requests, "{ctx}");
            assert!(c.drops <= c.handoffs, "{ctx}");
            assert!(c.t_est_secs >= 1, "{ctx}");
        }
        // Per-cell counters add up to the system counters.
        let total_req: u64 = r.cells.iter().map(|c| c.requests).sum();
        let total_ho: u64 = r.cells.iter().map(|c| c.handoffs).sum();
        assert_eq!(total_req, r.system_cb.trials(), "{ctx}");
        assert_eq!(total_ho, r.system_hd.trials(), "{ctx}");
    }
}

/// N_calc bounds per scheme: AC1 exactly 1, AC2 exactly 1 + |A|, AC3 in
/// between (paper Fig. 13's invariant, for all loads).
#[test]
fn n_calc_bounds() {
    let mut rng = StreamRng::seed_from_u64(0x5157_0002);
    for _ in 0..6 {
        let load = rng.gen_range_f64(20.0, 320.0);
        let seed = rng.gen_range(0u64..1_000);
        let base = Scenario::paper_baseline()
            .offered_load(load)
            .duration_secs(120.0)
            .seed(seed);
        let ac1 = run_scenario(&base.clone().scheme(SchemeKind::Ac1));
        assert_eq!(ac1.n_calc_mean, 1.0, "L {load}, seed {seed}");
        let ac2 = run_scenario(&base.clone().scheme(SchemeKind::Ac2));
        assert_eq!(ac2.n_calc_mean, 3.0, "L {load}, seed {seed}");
        let ac3 = run_scenario(&base.clone().scheme(SchemeKind::Ac3));
        assert!(ac3.n_calc_mean >= 1.0 - 1e-12, "L {load}, seed {seed}");
        assert!(ac3.n_calc_mean <= 3.0 + 1e-12, "L {load}, seed {seed}");
    }
}
