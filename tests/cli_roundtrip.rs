//! JSON round-trip guarantees for the CLI's interchange formats.

use qres::sim::{run_scenario, Scenario, SchemeKind, TimeVaryingConfig, WiredConfig};

#[test]
fn scenario_json_roundtrip() {
    let original = Scenario::paper_baseline()
        .scheme(SchemeKind::Static { guard_bus: 10 })
        .offered_load(180.0)
        .voice_ratio(0.8)
        .low_mobility()
        .trace_cells(&[4, 5])
        .seed(33);
    let json = qres_json::to_string_pretty(&original);
    let parsed: Scenario = qres_json::from_str(&json).unwrap();
    parsed.validate();
    assert_eq!(parsed.offered_load, original.offered_load);
    assert_eq!(parsed.scheme, original.scheme);
    assert_eq!(parsed.trace_cells, original.trace_cells);
    assert_eq!(parsed.speed_range_kmh, original.speed_range_kmh);
}

#[test]
fn scenario_roundtrip_preserves_simulation_results() {
    let original = Scenario::paper_baseline()
        .offered_load(150.0)
        .duration_secs(200.0)
        .seed(5);
    let parsed: Scenario = qres_json::from_str(&qres_json::to_string(&original)).unwrap();
    let a = run_scenario(&original);
    let b = run_scenario(&parsed);
    assert_eq!(a.system_cb, b.system_cb);
    assert_eq!(a.system_hd, b.system_hd);
    assert_eq!(a.events_dispatched, b.events_dispatched);
}

#[test]
fn complex_scenarios_roundtrip() {
    for scenario in [
        Scenario::paper_baseline().time_varying(TimeVaryingConfig::paper_like()),
        Scenario::paper_baseline().wired(WiredConfig::Tree {
            branching: 3,
            access_bus: 100,
            trunk_bus: 500,
        }),
        Scenario::paper_baseline().hex(4, 5).route_aware(),
        Scenario::paper_baseline().scheme(SchemeKind::Ns {
            window_secs: 30.0,
            mean_sojourn_secs: 36.0,
        }),
    ] {
        let json = qres_json::to_string(&scenario);
        let parsed: Scenario = qres_json::from_str(&json).unwrap();
        parsed.validate();
        assert_eq!(
            qres_json::to_string(&parsed),
            json,
            "round-trip must be lossless"
        );
    }
}

#[test]
fn run_result_serializes_with_traces() {
    let r = run_scenario(
        &Scenario::paper_baseline()
            .offered_load(200.0)
            .duration_secs(150.0)
            .trace_cells(&[4])
            .seed(9),
    );
    let json = qres_json::to_string(&r);
    assert!(json.contains("\"system_cb\""));
    assert!(json.contains("t_est_cell4"));
    // And parses back.
    let parsed: qres::sim::RunResult = qres_json::from_str(&json).unwrap();
    assert_eq!(parsed.p_cb(), r.p_cb());
    assert_eq!(parsed.traces.len(), 1);
}
