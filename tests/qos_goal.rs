//! End-to-end QoS-goal tests: the paper's headline claims, verified across
//! the full stack (DES → workload → reservation system → metrics).
//!
//! Durations are chosen to be long enough for the adaptive window to
//! converge (the paper's own Fig. 11 shows the cold start violating the
//! target before settling) while keeping the suite fast; the experiment
//! binaries run the full 20 000 s versions.

use qres::sim::{run_scenario, Scenario, SchemeKind};

/// AC3 keeps `P_HD` at or below ~the 0.01 target across loads and media
/// mixes (paper Fig. 8). Tolerance 1.5× target absorbs cold-start bias and
/// finite-run noise at these shortened durations.
#[test]
fn ac3_meets_drop_target_across_loads() {
    for &load in &[100.0, 200.0, 300.0] {
        for &r_vo in &[1.0, 0.5] {
            let r = run_scenario(
                &Scenario::paper_baseline()
                    .scheme(SchemeKind::Ac3)
                    .offered_load(load)
                    .voice_ratio(r_vo)
                    .high_mobility()
                    .duration_secs(4_000.0)
                    .seed(100),
            );
            assert!(
                r.p_hd() <= 0.015,
                "AC3 P_HD = {} at L = {load}, R_vo = {r_vo}",
                r.p_hd()
            );
        }
    }
}

/// The live sliding-window `P_HD` estimator (the telemetry plane's `/qos`
/// view) agrees with the end-of-run report: with the window stretched past
/// the run horizon, the windowed counts equal the report's counts exactly,
/// and the report's point estimate sits inside the live Wilson interval.
#[test]
fn live_qos_estimator_matches_end_of_run_report() {
    // 30 cells, and only cells >= 10 are compared: the other tests in
    // this binary run 10-cell scenarios concurrently against the same
    // process-global tracker, so cells 0..9 may carry their outcomes.
    qres::obs::set_qos_window_secs(1e9);
    let prev_level = qres::obs::level();
    qres::obs::set_level(qres::obs::Level::Info);
    let mut s = Scenario::paper_baseline()
        .scheme(SchemeKind::Ac3)
        .offered_load(200.0)
        .high_mobility()
        .duration_secs(3_000.0)
        .seed(110);
    s.num_cells = 30;
    let r = run_scenario(&s);
    qres::obs::set_level(prev_level);
    let live = qres::obs::qos_snapshot();
    qres::obs::reset_qos();
    qres::obs::reset_calib();

    let mut checked = 0usize;
    for cell in r.cells.iter().filter(|c| c.cell.0 >= 10) {
        let snap = live
            .iter()
            .find(|q| q.cell == cell.cell.0)
            .unwrap_or_else(|| panic!("cell {} missing from live snapshot", cell.cell.0));
        assert_eq!(
            snap.hd_trials, cell.handoffs,
            "cell {}: windowed hand-off count",
            cell.cell.0
        );
        assert_eq!(
            snap.hd_hits, cell.drops,
            "cell {}: windowed drop count",
            cell.cell.0
        );
        assert_eq!(
            snap.cb_trials, cell.requests,
            "cell {}: windowed request count",
            cell.cell.0
        );
        assert_eq!(
            snap.cb_hits, cell.blocked,
            "cell {}: windowed block count",
            cell.cell.0
        );
        if cell.handoffs > 0 {
            let (lo, hi) = snap.p_hd_wilson;
            assert!(
                lo <= cell.p_hd && cell.p_hd <= hi,
                "cell {}: report P_HD = {} outside live Wilson interval [{lo}, {hi}]",
                cell.cell.0,
                cell.p_hd
            );
            assert_eq!(snap.p_hd, Some(cell.p_hd));
            checked += 1;
        }
    }
    assert!(
        checked >= 15,
        "only {checked} cells had hand-offs to compare"
    );
}

/// Static reservation tuned for voice (G = 10) fails the target once half
/// the connections are 4-BU video under load (paper Fig. 7 / §5.2.1).
#[test]
fn static_g10_fails_for_video_heavy_traffic() {
    let r = run_scenario(
        &Scenario::paper_baseline()
            .scheme(SchemeKind::Static { guard_bus: 10 })
            .offered_load(250.0)
            .voice_ratio(0.5)
            .high_mobility()
            .duration_secs(6_000.0)
            .seed(101),
    );
    assert!(
        r.p_hd() > 0.01,
        "static G=10 unexpectedly met the target: P_HD = {}",
        r.p_hd()
    );
}

/// ... but over-reserves when under-loaded with pure voice: `P_HD` is an
/// order of magnitude below target (paper §5.2.1, point 3).
#[test]
fn static_g10_overreserves_when_underloaded() {
    let r = run_scenario(
        &Scenario::paper_baseline()
            .scheme(SchemeKind::Static { guard_bus: 10 })
            .offered_load(60.0)
            .voice_ratio(1.0)
            .high_mobility()
            .duration_secs(6_000.0)
            .seed(102),
    );
    assert!(
        r.p_hd() < 0.001,
        "expected heavy over-reservation, got P_HD = {}",
        r.p_hd()
    );
}

/// Low mobility needs less reservation than high mobility for the same
/// load (paper Fig. 9 discussion: fewer hand-offs expected).
#[test]
fn high_mobility_reserves_more_than_low() {
    let base = Scenario::paper_baseline()
        .scheme(SchemeKind::Ac3)
        .offered_load(200.0)
        .duration_secs(4_000.0)
        .seed(103);
    let high = run_scenario(&base.clone().high_mobility());
    let low = run_scenario(&base.low_mobility());
    assert!(
        high.avg_br() > low.avg_br(),
        "high-mobility B_r = {} <= low-mobility B_r = {}",
        high.avg_br(),
        low.avg_br()
    );
}

/// Video-heavy traffic reserves more than pure voice (paper Fig. 9:
/// "the more video connections exist, the more bandwidth is needed").
#[test]
fn video_reserves_more_than_voice() {
    let base = Scenario::paper_baseline()
        .scheme(SchemeKind::Ac3)
        .offered_load(200.0)
        .high_mobility()
        .duration_secs(4_000.0)
        .seed(104);
    let voice = run_scenario(&base.clone().voice_ratio(1.0));
    let video = run_scenario(&base.voice_ratio(0.5));
    assert!(
        video.avg_br() > voice.avg_br(),
        "video B_r = {} <= voice B_r = {}",
        video.avg_br(),
        voice.avg_br()
    );
}

/// Reservation targets track the offered load monotonically until
/// saturation (paper Fig. 9).
#[test]
fn reservation_grows_with_load() {
    let base = Scenario::paper_baseline()
        .scheme(SchemeKind::Ac3)
        .high_mobility()
        .duration_secs(3_000.0)
        .seed(105);
    let mut last = -1.0;
    for &load in &[60.0, 120.0, 240.0] {
        let r = run_scenario(&base.clone().offered_load(load));
        assert!(
            r.avg_br() > last,
            "B_r not increasing at L = {load}: {} <= {last}",
            r.avg_br()
        );
        last = r.avg_br();
    }
}

/// In the one-directional overload experiment (paper Table 3), AC1 lets
/// downstream cells blow past the drop target while AC3 keeps every cell
/// bounded, at the price of blocking some connections in cell 1.
#[test]
fn one_directional_overload_ac1_vs_ac3() {
    let base = Scenario::paper_baseline()
        .one_directional()
        .offered_load(300.0)
        .voice_ratio(1.0)
        .high_mobility()
        .duration_secs(8_000.0)
        .seed(106);
    let ac1 = run_scenario(&base.clone().scheme(SchemeKind::Ac1));
    let ac3 = run_scenario(&base.scheme(SchemeKind::Ac3));
    // Cell 1 (index 0): no upstream, so no hand-offs, and AC1 admits all.
    assert_eq!(ac1.cells[0].p_hd, 0.0);
    assert!(ac1.cells[0].p_cb < 0.05, "AC1 cell 1 blocks almost nothing");
    // AC1's worst downstream cell violates the target.
    let ac1_worst = ac1.cells.iter().map(|c| c.p_hd).fold(0.0, f64::max);
    assert!(
        ac1_worst > 0.01,
        "expected AC1 to violate somewhere, worst = {ac1_worst}"
    );
    // AC3 blocks in cell 1 (it cares about cell 2) and bounds every cell.
    assert!(
        ac3.cells[0].p_cb > ac1.cells[0].p_cb,
        "AC3 should block more in cell 1"
    );
    let ac3_worst = ac3.cells.iter().map(|c| c.p_hd).fold(0.0, f64::max);
    assert!(
        ac3_worst <= 0.015,
        "AC3 per-cell P_HD should stay bounded, worst = {ac3_worst}"
    );
}

/// AC1 yields the lowest blocking of the three predictive schemes
/// (paper Fig. 12: "AC1 has the smallest P_CB").
#[test]
fn ac1_blocks_least() {
    let base = Scenario::paper_baseline()
        .offered_load(300.0)
        .voice_ratio(1.0)
        .high_mobility()
        .duration_secs(4_000.0)
        .seed(107);
    let ac1 = run_scenario(&base.clone().scheme(SchemeKind::Ac1));
    let ac2 = run_scenario(&base.clone().scheme(SchemeKind::Ac2));
    let ac3 = run_scenario(&base.scheme(SchemeKind::Ac3));
    assert!(ac1.p_cb() <= ac2.p_cb() + 0.01);
    assert!(ac1.p_cb() <= ac3.p_cb() + 0.01);
    // AC2 and AC3 agree closely on both probabilities.
    assert!((ac2.p_cb() - ac3.p_cb()).abs() < 0.05);
}

/// Route-aware reservation (Section 7's ITS/GPS extension) still meets the
/// drop target while reserving no more than the history-only estimator —
/// knowing the destination can only sharpen the prediction.
#[test]
fn route_awareness_meets_target_with_leaner_reservation() {
    let base = Scenario::paper_baseline()
        .scheme(SchemeKind::Ac3)
        .offered_load(250.0)
        .voice_ratio(0.8)
        .high_mobility()
        .duration_secs(6_000.0)
        .seed(109);
    let history_only = run_scenario(&base.clone());
    let routed = run_scenario(&base.route_aware());
    assert!(
        routed.p_hd() <= 0.015,
        "route-aware P_HD = {}",
        routed.p_hd()
    );
    assert!(
        routed.avg_br() <= history_only.avg_br() * 1.1,
        "route-aware B_r = {} vs history-only {}",
        routed.avg_br(),
        history_only.avg_br()
    );
}

/// The adaptive scheme stays robust when the mobility pattern violates the
/// estimator's assumption (mobiles turning around mid-road) — the paper's
/// robustness claim, exercised via the turn-probability extension.
#[test]
fn robust_to_estimator_model_violation() {
    let mut s = Scenario::paper_baseline()
        .scheme(SchemeKind::Ac3)
        .offered_load(200.0)
        .high_mobility()
        .duration_secs(6_000.0)
        .seed(108);
    s.turn_probability = 0.3;
    let r = run_scenario(&s);
    assert!(
        r.p_hd() <= 0.015,
        "P_HD = {} with turning mobiles",
        r.p_hd()
    );
}
