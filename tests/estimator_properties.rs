//! Property-based tests of the mobility estimator (Eq. 4) and the HOE
//! cache — the probabilistic core the reservation arithmetic rests on.

use proptest::prelude::*;
use qres::cellnet::CellId;
use qres::des::{Duration, SimTime};
use qres::mobility::{handoff_probability, HandoffEvent, HandoffQuery, HoeCache, HoeConfig};

/// A generated hand-off history: (time offset, prev, next, sojourn).
fn history_strategy() -> impl Strategy<Value = Vec<(f64, Option<u32>, u32, f64)>> {
    prop::collection::vec(
        (
            0.0f64..1_000.0,          // event spacing
            prop::option::of(0u32..5), // prev
            0u32..5,                   // next
            0.1f64..500.0,             // sojourn
        ),
        1..120,
    )
}

fn build_cache(history: &[(f64, Option<u32>, u32, f64)], n_quad: usize) -> (HoeCache, SimTime) {
    let mut config = HoeConfig::stationary();
    config.n_quad = n_quad;
    let mut cache = HoeCache::new(config);
    let mut t = 0.0;
    for &(gap, prev, next, soj) in history {
        t += gap;
        cache.record(HandoffEvent::new(
            SimTime::from_secs(t),
            prev.map(CellId),
            CellId(next),
            Duration::from_secs(soj),
        ));
    }
    (cache, SimTime::from_secs(t + 1.0))
}

proptest! {
    /// p_h is always a probability.
    #[test]
    fn p_h_in_unit_interval(
        history in history_strategy(),
        prev in prop::option::of(0u32..5),
        next in 0u32..5,
        ext in 0.0f64..600.0,
        t_est in 0.0f64..600.0,
    ) {
        let (mut cache, now) = build_cache(&history, 100);
        let p = handoff_probability(&mut cache, HandoffQuery {
            now,
            prev: prev.map(CellId),
            extant_sojourn: Duration::from_secs(ext),
            next: CellId(next),
            t_est: Duration::from_secs(t_est),
        });
        prop_assert!((0.0..=1.0).contains(&p), "p_h = {p}");
    }

    /// p_h is non-decreasing in the estimation window T_est — the
    /// monotonicity the adaptive controller exploits (reserve more by
    /// looking further ahead).
    #[test]
    fn p_h_monotone_in_t_est(
        history in history_strategy(),
        prev in prop::option::of(0u32..5),
        next in 0u32..5,
        ext in 0.0f64..300.0,
    ) {
        let (mut cache, now) = build_cache(&history, 100);
        let mut last = 0.0;
        for t_est in [1.0, 5.0, 20.0, 60.0, 200.0, 600.0] {
            let p = handoff_probability(&mut cache, HandoffQuery {
                now,
                prev: prev.map(CellId),
                extant_sojourn: Duration::from_secs(ext),
                next: CellId(next),
                t_est: Duration::from_secs(t_est),
            });
            prop_assert!(p >= last - 1e-12, "p_h dropped from {last} to {p}");
            last = p;
        }
    }

    /// Total hand-off probability over all next cells is at most 1
    /// (the estimation function is a sub-probability once conditioned).
    #[test]
    fn p_h_sums_to_at_most_one(
        history in history_strategy(),
        prev in prop::option::of(0u32..5),
        ext in 0.0f64..300.0,
        t_est in 0.0f64..600.0,
    ) {
        let (mut cache, now) = build_cache(&history, 100);
        let total: f64 = (0..5)
            .map(|next| handoff_probability(&mut cache, HandoffQuery {
                now,
                prev: prev.map(CellId),
                extant_sojourn: Duration::from_secs(ext),
                next: CellId(next),
                t_est: Duration::from_secs(t_est),
            }))
            .sum();
        prop_assert!(total <= 1.0 + 1e-9, "Σ p_h = {total}");
    }

    /// With a window covering every observed sojourn and extant sojourn 0,
    /// the probabilities over next cells sum to exactly 1 whenever the
    /// prev has any history (everything observed eventually left).
    #[test]
    fn full_window_partitions_probability(
        history in history_strategy(),
        prev in prop::option::of(0u32..5),
    ) {
        let (mut cache, now) = build_cache(&history, 1_000);
        let has_history = history.iter().any(|&(_, p, _, _)| p == prev);
        let total: f64 = (0..5)
            .map(|next| handoff_probability(&mut cache, HandoffQuery {
                now,
                prev: prev.map(CellId),
                extant_sojourn: Duration::ZERO,
                next: CellId(next),
                t_est: Duration::from_secs(1_000.0),
            }))
            .sum();
        if has_history {
            prop_assert!((total - 1.0).abs() < 1e-9, "Σ p_h = {total}");
        } else {
            prop_assert_eq!(total, 0.0);
        }
    }

    /// Mobiles that outlasted every cached sojourn are stationary: p_h = 0
    /// toward every neighbor.
    #[test]
    fn outlasting_history_means_stationary(
        history in history_strategy(),
        prev in prop::option::of(0u32..5),
    ) {
        let (mut cache, now) = build_cache(&history, 100);
        let max_soj = history
            .iter()
            .filter(|&&(_, p, _, _)| p == prev)
            .map(|&(_, _, _, s)| s)
            .fold(0.0, f64::max);
        for next in 0..5 {
            let p = handoff_probability(&mut cache, HandoffQuery {
                now,
                prev: prev.map(CellId),
                extant_sojourn: Duration::from_secs(max_soj + 1.0),
                next: CellId(next),
                t_est: Duration::from_secs(10_000.0),
            });
            prop_assert_eq!(p, 0.0);
        }
    }

    /// The N_quad cap bounds both storage and the effective sample per
    /// (prev, next) pair.
    #[test]
    fn n_quad_bounds_storage(
        history in history_strategy(),
        n_quad in 1usize..50,
    ) {
        let (cache, _now) = build_cache(&history, n_quad);
        // Pairs: at most 6 prevs (incl. None) x 5 nexts.
        prop_assert!(cache.stored_events() <= n_quad * 30);
    }
}
