//! Randomized property tests of the mobility estimator (Eq. 4) and the HOE
//! cache — the probabilistic core the reservation arithmetic rests on.
//!
//! `proptest` is not available offline, so these drive the same properties
//! from a seeded [`StreamRng`]: deterministic, reproducible, and broad
//! (hundreds of random histories per property).

use qres::cellnet::CellId;
use qres::des::{Duration, SimTime, StreamRng};
use qres::mobility::{handoff_probability, HandoffEvent, HandoffQuery, HoeCache, HoeConfig};

/// A generated hand-off history: (time gap, prev, next, sojourn).
type RawEvent = (f64, Option<u32>, u32, f64);

fn random_history(rng: &mut StreamRng) -> Vec<RawEvent> {
    let len = rng.gen_range(1usize..120);
    (0..len)
        .map(|_| {
            (
                rng.gen_range_f64(0.0, 1_000.0),
                if rng.gen_bool(0.5) {
                    Some(rng.gen_range(0u32..5))
                } else {
                    None
                },
                rng.gen_range(0u32..5),
                rng.gen_range_f64(0.1, 500.0),
            )
        })
        .collect()
}

fn random_prev(rng: &mut StreamRng) -> Option<u32> {
    if rng.gen_bool(0.5) {
        Some(rng.gen_range(0u32..5))
    } else {
        None
    }
}

fn build_cache(history: &[RawEvent], n_quad: usize) -> (HoeCache, SimTime) {
    let mut config = HoeConfig::stationary();
    config.n_quad = n_quad;
    let mut cache = HoeCache::new(config);
    let mut t = 0.0;
    for &(gap, prev, next, soj) in history {
        t += gap;
        cache.record(HandoffEvent::new(
            SimTime::from_secs(t),
            prev.map(CellId),
            CellId(next),
            Duration::from_secs(soj),
        ));
    }
    (cache, SimTime::from_secs(t + 1.0))
}

/// p_h is always a probability.
#[test]
fn p_h_in_unit_interval() {
    let mut rng = StreamRng::seed_from_u64(0xE571_0001);
    for _ in 0..200 {
        let history = random_history(&mut rng);
        let (mut cache, now) = build_cache(&history, 100);
        let p = handoff_probability(
            &mut cache,
            HandoffQuery {
                now,
                prev: random_prev(&mut rng).map(CellId),
                extant_sojourn: Duration::from_secs(rng.gen_range_f64(0.0, 600.0)),
                next: CellId(rng.gen_range(0u32..5)),
                t_est: Duration::from_secs(rng.gen_range_f64(0.0, 600.0)),
            },
        );
        assert!((0.0..=1.0).contains(&p), "p_h = {p}");
    }
}

/// p_h is non-decreasing in the estimation window T_est — the monotonicity
/// the adaptive controller exploits (reserve more by looking further ahead).
#[test]
fn p_h_monotone_in_t_est() {
    let mut rng = StreamRng::seed_from_u64(0xE571_0002);
    for _ in 0..200 {
        let history = random_history(&mut rng);
        let (mut cache, now) = build_cache(&history, 100);
        let prev = random_prev(&mut rng).map(CellId);
        let next = CellId(rng.gen_range(0u32..5));
        let ext = rng.gen_range_f64(0.0, 300.0);
        let mut last = 0.0;
        for t_est in [1.0, 5.0, 20.0, 60.0, 200.0, 600.0] {
            let p = handoff_probability(
                &mut cache,
                HandoffQuery {
                    now,
                    prev,
                    extant_sojourn: Duration::from_secs(ext),
                    next,
                    t_est: Duration::from_secs(t_est),
                },
            );
            assert!(p >= last - 1e-12, "p_h dropped from {last} to {p}");
            last = p;
        }
    }
}

/// Total hand-off probability over all next cells is at most 1 (the
/// estimation function is a sub-probability once conditioned).
#[test]
fn p_h_sums_to_at_most_one() {
    let mut rng = StreamRng::seed_from_u64(0xE571_0003);
    for _ in 0..200 {
        let history = random_history(&mut rng);
        let (mut cache, now) = build_cache(&history, 100);
        let prev = random_prev(&mut rng).map(CellId);
        let ext = rng.gen_range_f64(0.0, 300.0);
        let t_est = rng.gen_range_f64(0.0, 600.0);
        let total: f64 = (0..5)
            .map(|next| {
                handoff_probability(
                    &mut cache,
                    HandoffQuery {
                        now,
                        prev,
                        extant_sojourn: Duration::from_secs(ext),
                        next: CellId(next),
                        t_est: Duration::from_secs(t_est),
                    },
                )
            })
            .sum();
        assert!(total <= 1.0 + 1e-9, "Σ p_h = {total}");
    }
}

/// With a window covering every observed sojourn and extant sojourn 0, the
/// probabilities over next cells sum to exactly 1 whenever the prev has any
/// history (everything observed eventually left).
#[test]
fn full_window_partitions_probability() {
    let mut rng = StreamRng::seed_from_u64(0xE571_0004);
    for _ in 0..200 {
        let history = random_history(&mut rng);
        let prev = random_prev(&mut rng);
        let (mut cache, now) = build_cache(&history, 1_000);
        let has_history = history.iter().any(|&(_, p, _, _)| p == prev);
        let total: f64 = (0..5)
            .map(|next| {
                handoff_probability(
                    &mut cache,
                    HandoffQuery {
                        now,
                        prev: prev.map(CellId),
                        extant_sojourn: Duration::ZERO,
                        next: CellId(next),
                        t_est: Duration::from_secs(1_000.0),
                    },
                )
            })
            .sum();
        if has_history {
            assert!((total - 1.0).abs() < 1e-9, "Σ p_h = {total}");
        } else {
            assert_eq!(total, 0.0);
        }
    }
}

/// Mobiles that outlasted every cached sojourn are stationary: p_h = 0
/// toward every neighbor.
#[test]
fn outlasting_history_means_stationary() {
    let mut rng = StreamRng::seed_from_u64(0xE571_0005);
    for _ in 0..200 {
        let history = random_history(&mut rng);
        let prev = random_prev(&mut rng);
        let (mut cache, now) = build_cache(&history, 100);
        let max_soj = history
            .iter()
            .filter(|&&(_, p, _, _)| p == prev)
            .map(|&(_, _, _, s)| s)
            .fold(0.0, f64::max);
        for next in 0..5 {
            let p = handoff_probability(
                &mut cache,
                HandoffQuery {
                    now,
                    prev: prev.map(CellId),
                    extant_sojourn: Duration::from_secs(max_soj + 1.0),
                    next: CellId(next),
                    t_est: Duration::from_secs(10_000.0),
                },
            );
            assert_eq!(p, 0.0);
        }
    }
}

/// The N_quad cap bounds both storage and the effective sample per
/// (prev, next) pair.
#[test]
fn n_quad_bounds_storage() {
    let mut rng = StreamRng::seed_from_u64(0xE571_0006);
    for _ in 0..200 {
        let history = random_history(&mut rng);
        let n_quad = rng.gen_range(1usize..50);
        let (cache, _now) = build_cache(&history, n_quad);
        // Pairs: at most 6 prevs (incl. None) x 5 nexts.
        assert!(cache.stored_events() <= n_quad * 30);
    }
}
