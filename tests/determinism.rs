//! Reproducibility guarantees across the full stack.

use qres::sim::{run_scenario, Scenario, SchemeKind, TimeVaryingConfig};

/// Bit-identical results from the same seed, including traces.
#[test]
fn identical_seeds_identical_runs() {
    let s = Scenario::paper_baseline()
        .scheme(SchemeKind::Ac3)
        .offered_load(250.0)
        .duration_secs(1_000.0)
        .trace_cells(&[4])
        .seed(77);
    let a = run_scenario(&s);
    let b = run_scenario(&s);
    assert_eq!(a.system_cb, b.system_cb);
    assert_eq!(a.system_hd, b.system_hd);
    assert_eq!(a.events_dispatched, b.events_dispatched);
    assert_eq!(a.n_calc_mean, b.n_calc_mean);
    assert_eq!(a.signaling, b.signaling);
    assert_eq!(a.traces[&4].b_r.points(), b.traces[&4].b_r.points());
    assert_eq!(a.traces[&4].t_est.points(), b.traces[&4].t_est.points());
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(ca.p_cb, cb.p_cb);
        assert_eq!(ca.p_hd, cb.p_hd);
        assert_eq!(ca.b_r_avg, cb.b_r_avg);
        assert_eq!(ca.b_u_avg, cb.b_u_avg);
    }
}

/// Different seeds genuinely change the realization.
#[test]
fn different_seeds_differ() {
    let base = Scenario::paper_baseline()
        .offered_load(150.0)
        .duration_secs(600.0);
    let a = run_scenario(&base.clone().seed(1));
    let b = run_scenario(&base.seed(2));
    assert_ne!(a.system_cb.trials(), b.system_cb.trials());
}

/// Common random numbers: the workload consumed is identical across
/// schemes under one seed, so arrival counts match exactly even though
/// admission outcomes differ.
#[test]
fn workload_is_scheme_independent() {
    let base = Scenario::paper_baseline()
        .offered_load(250.0)
        .duration_secs(1_000.0)
        .seed(9);
    let results: Vec<_> = [
        SchemeKind::Static { guard_bus: 10 },
        SchemeKind::Ac1,
        SchemeKind::Ac2,
        SchemeKind::Ac3,
    ]
    .into_iter()
    .map(|scheme| run_scenario(&base.clone().scheme(scheme)))
    .collect();
    let trials = results[0].system_cb.trials();
    assert!(trials > 1_000);
    for r in &results[1..] {
        assert_eq!(r.system_cb.trials(), trials, "arrival streams diverged");
    }
    // Outcomes DO differ (the schemes are not no-ops).
    assert_ne!(results[0].system_cb.hits(), results[3].system_cb.hits());
}

/// The telemetry recorder is strictly passive: enabling it at the most
/// verbose level — with the live HTTP scrape endpoint attached and being
/// polled — changes no simulation outcome. Every metric of the paper
/// comes out bit-identical with the recorder on and off.
#[test]
fn recorder_does_not_perturb_outcomes() {
    let s = Scenario::paper_baseline()
        .scheme(SchemeKind::Ac3)
        .offered_load(250.0)
        .duration_secs(600.0)
        .seed(77);
    qres::obs::set_level(qres::obs::Level::Off);
    let off = run_scenario(&s);
    // The scrape server reads the registry concurrently over relaxed
    // atomics; keep it attached (and actively rendering) for the whole
    // obs-on run to prove scraping cannot perturb outcomes either.
    let server = qres::obs::ObsServer::start("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.addr();
    let scraper = std::thread::spawn(move || {
        use std::io::{Read, Write};
        let mut bodies = 0usize;
        for _ in 0..20 {
            let Ok(mut conn) = std::net::TcpStream::connect(addr) else {
                break;
            };
            conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            let mut response = String::new();
            conn.read_to_string(&mut response).unwrap();
            assert!(response.starts_with("HTTP/1.1 200"), "scrape failed");
            bodies += 1;
        }
        bodies
    });
    qres::obs::set_level(qres::obs::Level::Debug);
    let on = run_scenario(&s);
    qres::obs::set_level(qres::obs::Level::Off);
    assert_eq!(scraper.join().expect("scraper thread"), 20);
    server.shutdown();
    let (events, _) = qres::obs::drain_events();
    qres::obs::reset();
    qres::obs::reset_metrics();
    // The obs-on run also exercised the QoS/calibration trackers (both
    // strictly obs-side); clear them so this test leaves no global state.
    qres::obs::reset_qos();
    qres::obs::reset_calib();
    assert!(!events.is_empty(), "debug level should record events");
    assert_eq!(off.system_cb, on.system_cb);
    assert_eq!(off.system_hd, on.system_hd);
    assert_eq!(off.events_dispatched, on.events_dispatched);
    assert_eq!(off.n_calc_mean, on.n_calc_mean);
    assert_eq!(off.signaling, on.signaling);
    for (a, b) in off.cells.iter().zip(&on.cells) {
        assert_eq!(a.p_cb, b.p_cb);
        assert_eq!(a.p_hd, b.p_hd);
        assert_eq!(a.b_r_final, b.b_r_final);
        assert_eq!(a.b_u_final, b.b_u_final);
        assert_eq!(a.t_est_secs, b.t_est_secs);
    }
}

/// The asynchronous two-phase signaling plane, run over an **ideal**
/// transport (zero latency, zero loss, unbounded queues), reproduces the
/// synchronous admission path bit-for-bit under every scheme: the whole
/// probe → reserve → commit cascade unfolds at a single simulation instant
/// in exactly the synchronous evaluation order.
#[test]
fn async_zero_latency_matches_synchronous() {
    use qres::cellnet::MessageKind;
    use qres::sim::Engine;
    for scheme in [
        SchemeKind::Static { guard_bus: 10 },
        SchemeKind::Ac1,
        SchemeKind::Ac2,
        SchemeKind::Ac3,
    ] {
        let base = Scenario::paper_baseline()
            .scheme(scheme)
            .offered_load(250.0)
            .duration_secs(600.0)
            .seed(21);
        let mut sync_engine = Engine::new(base.clone());
        let sync = sync_engine.run_keeping_state();
        let mut async_engine = Engine::new(base.async_signaling());
        let twop = async_engine.run_keeping_state();
        assert_eq!(sync.system_cb, twop.system_cb, "{scheme:?} P_CB counters");
        assert_eq!(sync.system_hd, twop.system_hd, "{scheme:?} P_HD counters");
        assert_eq!(sync.n_calc_mean, twop.n_calc_mean, "{scheme:?} N_calc");
        for (a, b) in sync.cells.iter().zip(&twop.cells) {
            assert_eq!(
                a.b_r_final.to_bits(),
                b.b_r_final.to_bits(),
                "{scheme:?} cell {} B_r must be bit-identical",
                a.cell
            );
            assert_eq!(a.b_u_final, b.b_u_final, "{scheme:?} cell {}", a.cell);
            assert_eq!(a.t_est_secs, b.t_est_secs, "{scheme:?} cell {}", a.cell);
            assert_eq!(a.p_cb, b.p_cb, "{scheme:?} cell {}", a.cell);
            assert_eq!(a.p_hd, b.p_hd, "{scheme:?} cell {}", a.cell);
            assert_eq!(a.b_r_avg, b.b_r_avg, "{scheme:?} cell {}", a.cell);
            assert_eq!(a.b_u_avg, b.b_u_avg, "{scheme:?} cell {}", a.cell);
        }
        // The probe/check traffic matches message-for-message; only the
        // commit/abort epilogue is new to the two-phase plane.
        for kind in [
            MessageKind::ReservationQuery,
            MessageKind::ReservationReply,
            MessageKind::AdmissionCheckRequest,
            MessageKind::AdmissionCheckReply,
        ] {
            assert_eq!(
                sync_engine.system_mut().signaling().stats_for(kind),
                async_engine.system_mut().signaling().stats_for(kind),
                "{scheme:?} {kind:?} traffic"
            );
        }
        // An ideal transport produces no faults, timeouts or lost races.
        let b = twop.backbone;
        assert_eq!(b.dropped_loss, 0, "{scheme:?}");
        assert_eq!(b.dropped_overflow, 0, "{scheme:?}");
        assert_eq!(b.reply_timeouts, 0, "{scheme:?}");
        assert_eq!(b.commit_timeouts, 0, "{scheme:?}");
        assert_eq!(b.stale_replies, 0, "{scheme:?}");
        assert_eq!(b.races_lost, 0, "{scheme:?}");
    }
}

/// Fault injection stays deterministic: the loss stream, the delivery
/// schedule and every timeout are seeded, so a faulty run replays exactly.
#[test]
fn faulty_backbone_is_deterministic() {
    let s = Scenario::paper_baseline()
        .scheme(SchemeKind::Ac3)
        .offered_load(200.0)
        .duration_secs(400.0)
        .backbone_faults(0.05, 0.02, 64)
        .seed(33);
    let a = run_scenario(&s);
    let b = run_scenario(&s);
    assert_eq!(a.system_cb, b.system_cb);
    assert_eq!(a.system_hd, b.system_hd);
    assert_eq!(a.backbone, b.backbone);
    assert_eq!(a.events_dispatched, b.events_dispatched);
    assert!(
        a.backbone.dropped_loss > 0,
        "2% loss over a 400 s run must drop messages"
    );
}

/// Determinism holds in the time-varying mode too (retry coin flips are a
/// seeded stream).
#[test]
fn time_varying_deterministic() {
    let mut tv = TimeVaryingConfig::paper_like();
    tv.days = 1;
    let mut s = Scenario::paper_baseline()
        .scheme(SchemeKind::Ac1)
        .time_varying(tv)
        .seed(13);
    s.duration_secs = 6.0 * 3_600.0;
    let a = run_scenario(&s);
    let b = run_scenario(&s);
    assert_eq!(a.hourly_requests, b.hourly_requests);
    assert_eq!(a.system_cb, b.system_cb);
    assert_eq!(a.system_hd, b.system_hd);
}
