//! End-to-end telemetry smoke test: one obs-enabled high-load AC3 run must
//! produce every event group, a lint-clean Prometheus exposition, and a
//! JSONL stream that parses back through `qres-json`.

use qres::obs;

#[test]
fn obs_enabled_run_covers_all_event_groups() {
    // Large enough that a short run cannot overwrite early events (the
    // queue high-water marks fire in the warm-up).
    obs::set_capacity(1 << 20);
    obs::set_level(obs::Level::Debug);
    let r = qres::sim::run_scenario(
        &qres::sim::Scenario::paper_baseline()
            .scheme(qres::sim::SchemeKind::Ac3)
            .offered_load(300.0)
            .duration_secs(300.0)
            .seed(11),
    );
    obs::set_level(obs::Level::Off);
    let (events, dropped) = obs::drain_events();
    let prom = obs::prometheus_text();
    let snapshot = obs::snapshot_json();
    obs::reset();
    obs::reset_metrics();
    obs::reset_qos();
    obs::reset_calib();

    assert!(r.events_dispatched > 0);
    assert_eq!(dropped, 0, "capacity must hold the whole stream");
    assert!(!events.is_empty());

    // All six event groups of DESIGN.md §10 appear (HOE insert/evict share
    // a group: evictions need long runs).
    let has = |tags: &[&str]| events.iter().any(|e| tags.contains(&e.type_tag()));
    assert!(has(&["admission"]), "no admission events");
    assert!(has(&["br_compute"]), "no B_r compute events");
    assert!(has(&["t_est_change"]), "no T_est window events");
    assert!(has(&["hoe_insert", "hoe_evict"]), "no HOE cache events");
    assert!(has(&["queue_high_water"]), "no DES queue events");
    assert!(has(&["backbone_send"]), "no backbone signaling events");

    // The exposition passes the in-repo lint and carries the hot-path
    // histograms.
    obs::validate_prometheus_text(&prom).expect("exposition must lint clean");
    assert!(prom.contains("qres_admission_test_ns_bucket"));
    assert!(prom.contains("qres_event_dispatch_ns_count"));
    assert!(prom.contains("qres_backbone_msgs_total"));

    // Every JSONL line round-trips through qres-json as a tagged object.
    let jsonl = obs::events_to_jsonl(&events);
    let mut lines = 0usize;
    for line in jsonl.lines() {
        let qres_json::Value::Object(fields) =
            qres_json::Value::parse(line).expect("event line must be valid JSON")
        else {
            panic!("event line must be an object");
        };
        assert!(fields.iter().any(|(k, _)| k == "type"));
        assert!(fields.iter().any(|(k, _)| k == "t"));
        lines += 1;
    }
    assert_eq!(lines, events.len());

    // The JSON snapshot has the four exporter sections, and the QoS view
    // carries the calibration sub-document.
    let qres_json::Value::Object(sections) = &snapshot else {
        panic!("snapshot must be an object");
    };
    let keys: Vec<&str> = sections.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(keys, ["counters", "gauges", "histograms", "qos"]);
    let qos = snapshot.get("qos").unwrap();
    assert!(qos.get("cells").is_some());
    assert!(qos.get("calib").is_some());
}
