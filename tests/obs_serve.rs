//! End-to-end checks of the live telemetry plane: `ObsServer` scraped
//! over real TCP while a sweep is actually running in this process.
//!
//! This file is its own test binary, so flipping the process-global obs
//! level here cannot race the determinism or smoke suites.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use qres::sim::{Scenario, SchemeKind};

fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut conn = TcpStream::connect(addr).expect("connect to obs server");
    conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a head/body split");
    (head.to_string(), body.to_string())
}

/// The acceptance path of the telemetry plane: while a sweep runs,
/// `curl`-style scrapes return lint-clean exposition carrying the
/// per-cell `qres_admission_test_ns{cell="..."}` series, the JSON
/// snapshot stays well-formed, and the progress counters reach
/// planned == done by the end.
#[test]
fn scrape_during_running_sweep() {
    qres::obs::reset_metrics();
    qres::obs::set_sample_every(3);
    qres::obs::set_level(qres::obs::Level::Debug);
    let server = qres::obs::ObsServer::start("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.addr();

    let sweep = std::thread::spawn(|| {
        let base = Scenario::paper_baseline()
            .scheme(SchemeKind::Ac3)
            .duration_secs(400.0)
            .seed(5);
        qres::sim::sweep_offered_load(&base, &[100.0, 250.0])
    });

    // Poll /metrics until the per-cell admission series shows up — this
    // is the live mid-run scrape the whole subsystem exists for. The
    // first admission happens within milliseconds of the sweep starting,
    // so the deadline is generous purely for slow CI machines.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut live_body = String::new();
    while Instant::now() < deadline {
        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "head: {head}");
        assert!(head.contains("text/plain; version=0.0.4"));
        if body.contains("qres_admission_test_ns_bucket{cell=\"") {
            live_body = body;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        !live_body.is_empty(),
        "per-cell admission series never appeared on the live endpoint"
    );
    qres::obs::validate_prometheus_text(&live_body).expect("live scrape must lint clean");

    // The secondary routes answer concurrently with the running sweep.
    let (head, body) = http_get(addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 200"));
    assert_eq!(body, "ok\n");
    let (head, _) = http_get(addr, "/nope");
    assert!(head.starts_with("HTTP/1.1 404"));
    let (head, body) = http_get(addr, "/metrics.json");
    assert!(head.starts_with("HTTP/1.1 200"));
    assert!(head.contains("application/json"));
    let snapshot = qres_json::Value::parse(&body).expect("JSON snapshot parses");
    let qres_json::Value::Object(sections) = &snapshot else {
        panic!("snapshot is not an object")
    };
    let keys: Vec<&str> = sections.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(keys, ["counters", "gauges", "histograms", "qos"]);
    let rate = snapshot
        .get("gauges")
        .and_then(|g| g.get("qres_obs_sample_rate"));
    assert!(
        matches!(
            rate,
            Some(qres_json::Value::Int(3) | qres_json::Value::UInt(3))
        ),
        "sampling stride must be visible to scrapers, got {rate:?}"
    );

    let points = sweep.join().expect("sweep thread");
    assert_eq!(points.len(), 2);

    // After the sweep: progress counters closed out, still lint-clean.
    let (_, done_body) = http_get(addr, "/metrics");
    qres::obs::validate_prometheus_text(&done_body).expect("final scrape must lint clean");
    assert!(done_body.contains("qres_sweep_points_planned_total 2"));
    assert!(done_body.contains("qres_sweep_points_done_total 2"));
    assert!(
        done_body.contains("qres_obs_sample_rate 3"),
        "sample-rate gauge missing from exposition"
    );
    // Sampling actually dropped debug-tier events.
    assert!(done_body.contains("qres_obs_events_sampled_out_total"));

    qres::obs::set_level(qres::obs::Level::Off);
    qres::obs::set_sample_every(1);
    server.shutdown();
    qres::obs::reset();
    qres::obs::reset_metrics();
    qres::obs::reset_qos();
    qres::obs::reset_calib();
}
