#!/bin/bash
# Regenerates every figure and table of the paper. ~1 h on one core.
set -u
cd "$(dirname "$0")"
mkdir -p results
for exp in fig07_static fig08_ac3 fig09_reservation fig10_test_trace \
           fig11_phd_trace fig12_comparison fig13_ncalc \
           table2_cell_status table3_one_direction fig14_time_varying \
           ablation_route_aware ablation_backbone ablation_wired comparison_ns; do
  echo "=== running $exp ($(date +%H:%M:%S)) ==="
  ./target/release/$exp "$@" > results/$exp.txt 2>&1 || echo "$exp FAILED"
done
echo "ALL_EXPERIMENTS_DONE $(date +%H:%M:%S)"
